#include "trace/metrics.h"

#include <cmath>
#include <cstdio>

namespace unimem::trace {

namespace {

// Relaxed atomic-double accumulate; contention is end-of-run scale, not
// hot-path scale, so a CAS loop is fine.
void atomic_add(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

void Histogram::observe(double sample) {
  if (!(sample >= 0.0)) sample = 0.0;  // NaN / negative clamp
  int b = 0;
  if (sample >= 1.0) {
    b = static_cast<int>(std::ceil(std::log2(sample + 1e-12))) + 1;
    if (b >= kBuckets) b = kBuckets - 1;
    if (b < 1) b = 1;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(&sum_, sample);
  if (prev == 0) {
    // First observation seeds min/max (0-inits would poison min).
    min_.store(sample, std::memory_order_relaxed);
    max_.store(sample, std::memory_order_relaxed);
  } else {
    atomic_min(&min_, sample);
    atomic_max(&max_, sample);
  }
}

std::string MetricsSnapshot::to_json() const {
  // Built with append() rather than operator+ chains: some GCC releases
  // mis-fire -Wrestrict (fatal under -Werror) on the char* + rvalue-string
  // inlining path; appends produce the identical bytes.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(k);
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(k);
    out += "\":";
    out += json_number(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(k);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += json_number(h.sum);
    out += ",\"min\":";
    out += json_number(h.min);
    out += ",\"max\":";
    out += json_number(h.max);
    out += "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked on purpose
  return *reg;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  for (const auto& [k, c] : counters_) snap.counters[k] = c->value();
  for (const auto& [k, g] : gauges_) snap.gauges[k] = g->value();
  for (const auto& [k, h] : histograms_) {
    MetricsSnapshot::Hist row;
    row.count = h->count();
    row.sum = h->sum();
    row.min = h->min();
    row.max = h->max();
    snap.histograms[k] = row;
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace unimem::trace
