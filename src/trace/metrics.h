// MetricsRegistry: named counters / gauges / histograms behind one
// snapshot-able interface.  Subsumes the scattered RuntimeStats /
// CampaignOutcome tallies for export: subsystems publish into the global
// registry at convenient points (end of a run, end of a campaign) and the
// CLI embeds a snapshot in --summary-json under "metrics".
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (node-based storage) and cheap to update from any
// thread: counters are relaxed atomic adds, gauges atomic stores,
// histograms log2-bucketed atomic adds.  Snapshots are mutex-consistent
// for the name table but read live atomic values — good enough for
// end-of-run export, not a barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace unimem::trace {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram over non-negative samples.  Bucket i counts
/// samples in [2^(i-1), 2^i) scaled by `unit` (bucket 0: [0, 1)); exact
/// count/sum/min/max ride along for the summary.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double sample);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct Hist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Hist> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Render as a JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..}}}.
  /// Keys are emitted sorted, so output is deterministic.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Get-or-create by dotted name ("unimem.migrations", "sweep.points_ok").
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Drop every metric (tests; also the fork-child path where parent
  /// tallies must not leak into the task's summary).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace unimem::trace
