#include "trace/trace.h"

#include <chrono>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace unimem::trace {

std::atomic<bool> g_trace_on{false};

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t realtime_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Hot-path timestamp.  clock_gettime runs ~44 ns on the VM-class hosts
// this targets — alone nearly the whole <=50 ns emit budget — so emit
// stamps the raw invariant TSC (or the aarch64 generic timer) and flush()
// converts ticks to ns with a linear calibration against steady_clock
// over the elapsed recording interval.  The calibration is refreshed per
// drain; the ppm-level scale jitter between drains is far below the cost
// of the events being measured.
inline std::uint64_t fast_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return steady_now_ns();  // fallback: calibration lands at ~1.0 ns/tick
#endif
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v && p < (std::size_t{1} << 30)) p <<= 1;
  return p;
}

// Per-thread ring slots.  Sweeps spawn a fresh set of rank threads per
// world, so the per-ring footprint (slots * ~80 B) is multiplied by the
// number of threads alive between flushes — keep the default modest and
// let --trace-buf raise it.
constexpr std::size_t kDefaultBufEvents = std::size_t{16} * 1024;

}  // namespace

// ---- Ring -----------------------------------------------------------------

Ring::Ring(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

bool Ring::push(const Event& e) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[static_cast<std::size_t>(head) & mask_] = e;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

std::size_t Ring::pop_into(std::vector<Event>* out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  for (std::uint64_t i = tail; i != head; ++i)
    out->push_back(slots_[static_cast<std::size_t>(i) & mask_]);
  tail_.store(head, std::memory_order_release);
  return static_cast<std::size_t>(head - tail);
}

// ---- TraceRecorder --------------------------------------------------------

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* rec = new TraceRecorder();  // leaked: outlives TLS
  return *rec;
}

TraceRecorder::ThreadState& TraceRecorder::thread_state() {
  thread_local ThreadState ts;
  return ts;
}

void TraceRecorder::start(std::size_t buf_events) {
  std::lock_guard<std::mutex> lk(mu_);
  // Bump the generation first: every thread's cached state goes stale and
  // re-registers on next emit.  A forked child inherits the parent's
  // registry and TLS; this discards both views cleanly.
  generation_.fetch_add(1, std::memory_order_release);
  rings_.clear();
  data_ = TraceData();
  buf_events_ = buf_events != 0 ? buf_events : kDefaultBufEvents;
  epoch_realtime_ns_ = realtime_now_ns();
  start_steady_ns_ = steady_now_ns();
  start_ticks_ = fast_ticks();
  data_.epoch_realtime_ns = epoch_realtime_ns_;
  g_trace_on.store(true, std::memory_order_release);
}

void TraceRecorder::register_thread(ThreadState* ts,
                                    const std::string& default_name,
                                    int sort_hint) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!active()) return;
  ts->generation = generation_.load(std::memory_order_acquire);
  ts->ring = std::make_shared<Ring>(buf_events_);
  data_.tracks.push_back({default_name, sort_hint});
  ts->track = static_cast<std::uint32_t>(data_.tracks.size() - 1);
  rings_.push_back({ts->ring});
}

void TraceRecorder::set_thread_track(const std::string& name, int sort_hint) {
  if (!active()) return;
  ThreadState& ts = thread_state();
  if (ts.generation != generation_.load(std::memory_order_acquire)) {
    register_thread(&ts, name, sort_hint);
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (ts.track < data_.tracks.size()) {
    data_.tracks[ts.track].name = name;
    data_.tracks[ts.track].sort_hint = sort_hint;
  }
}

void TraceRecorder::emit(Event e) {
  if (!active()) return;
  ThreadState& ts = thread_state();
  if (ts.generation != generation_.load(std::memory_order_acquire)) {
    register_thread(&ts, "thread", 1000);
    if (ts.ring == nullptr) return;  // recorder stopped under us
  }
  e.ticks = fast_ticks();
  e.track = ts.track;
  ts.ring->push(e);
}

void TraceRecorder::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  // Tick -> ns calibration over everything recorded so far.  Every
  // drained event falls inside [start, now], so the linear fit bounds its
  // conversion error by the clocks' relative drift over that window.
  const std::uint64_t now_ticks = fast_ticks();
  const std::uint64_t now_ns = steady_now_ns();
  const double ns_per_tick =
      now_ticks > start_ticks_ && now_ns > start_steady_ns_
          ? static_cast<double>(now_ns - start_steady_ns_) /
                static_cast<double>(now_ticks - start_ticks_)
          : 1.0;
  std::vector<Event> batch;
  std::size_t keep = 0;
  for (RegisteredRing& r : rings_) {
    // Read retirement BEFORE draining: the acquire pairs with the owning
    // thread's release in retire(), so a ring observed retired has every
    // push visible to this pop.
    const bool retired = r.ring->retired();
    batch.clear();
    r.ring->pop_into(&batch);
    for (const Event& e : batch) {
      TraceEventRow row;
      row.cat = data_.intern(e.cat);
      row.name = data_.intern(e.name);
      row.arg_name0 = data_.intern(e.arg_name0);
      row.arg_name1 = data_.intern(e.arg_name1);
      row.arg0 = e.arg0;
      row.arg1 = e.arg1;
      row.vt = e.vt;
      row.wall_ns = e.ticks > start_ticks_
                        ? static_cast<std::uint64_t>(
                              static_cast<double>(e.ticks - start_ticks_) *
                              ns_per_tick)
                        : 0;
      row.track = e.track;
      row.phase = static_cast<char>(e.phase);
      data_.events.push_back(row);
    }
    // Reap rings whose owning thread has exited — sweeps churn through
    // rank threads, and a drained dead ring is pure ballast.  Fold its
    // drop count now.
    if (retired) {
      data_.dropped += r.ring->dropped();
      continue;
    }
    rings_[keep++] = std::move(r);
  }
  rings_.resize(keep);
}

TraceData TraceRecorder::stop() {
  // Disable first so producers quiesce, then take the tail.  An emit that
  // raced past the flag check lands in a ring we still drain here (the
  // push itself is lock-free and safe); one that arrives later is lost,
  // which is the documented drop-don't-block contract.
  g_trace_on.store(false, std::memory_order_release);
  flush();
  std::lock_guard<std::mutex> lk(mu_);
  for (const RegisteredRing& r : rings_) data_.dropped += r.ring->dropped();
  generation_.fetch_add(1, std::memory_order_release);
  rings_.clear();
  TraceData out = std::move(data_);
  data_ = TraceData();
  return out;
}

// ---- free helpers ---------------------------------------------------------

void emit_event(Phase ph, const char* cat, const char* name, double vt,
                const char* an0, std::uint64_t a0, const char* an1,
                std::uint64_t a1) {
  Event e;
  e.phase = ph;
  e.cat = cat;
  e.name = name;
  e.vt = vt;
  e.arg_name0 = an0;
  e.arg0 = a0;
  e.arg_name1 = an1;
  e.arg1 = a1;
  TraceRecorder::instance().emit(e);
}

void set_thread_track(const std::string& name, int sort_hint) {
  TraceRecorder::instance().set_thread_track(name, sort_hint);
}

}  // namespace unimem::trace
