// Drained-trace container and exporters.
//
// TraceData is the post-drain form of a recording: strings interned into
// a table, tracks resolved, events in fixed-width rows.  Two encodings:
//
//   * Chrome trace-event JSON (write_chrome_json) — loads directly in
//     Perfetto / chrome://tracing.  Each recording renders as TWO trace
//     processes: pid 1 is the virtual-time clock (ts = virtual seconds as
//     microseconds; events without a virtual stamp are omitted) and pid 2
//     is the wall clock (ts = wall ns / 1000).  One thread per track in
//     each process, named from the track table.
//
//   * Compact binary ("UNIMTRC1", write_binary/read_binary) — the spill
//     format task children write and `tools/unimem_trace` converts.
//     Little-endian, string-table-relative, ~34 bytes/event.
//
// merge_into stitches shards from different processes into one timeline:
// string/track ids are remapped, and each shard's wall clock is shifted
// by the difference of the CLOCK_REALTIME epochs the recorders captured
// at start() (clamped at zero — a shard that started earlier than the
// base keeps its origin).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace unimem::trace {

/// One drained event.  Indices point into TraceData::strings; an index of
/// 0 (the interned empty string) means "absent".
struct TraceEventRow {
  std::uint32_t cat = 0;
  std::uint32_t name = 0;
  std::uint32_t arg_name0 = 0;
  std::uint32_t arg_name1 = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  double vt = -1.0;           ///< virtual seconds; < 0 = no virtual stamp
  std::uint64_t wall_ns = 0;  ///< ns since the recording's wall origin
  std::uint32_t track = 0;
  char phase = 'i';  ///< 'B' | 'E' | 'i' | 'C'
};

struct TraceTrack {
  std::string name;
  int sort_hint = 0;
};

struct TraceData {
  /// CLOCK_REALTIME ns at recorder start; aligns wall clocks across
  /// processes when merging shards.
  std::uint64_t epoch_realtime_ns = 0;
  /// Interned strings; index 0 is always "".
  std::vector<std::string> strings;
  /// Track table; index 0 is the fallback "untracked" row.
  std::vector<TraceTrack> tracks;
  std::vector<TraceEventRow> events;
  /// Events lost to full rings across the recording.
  std::uint64_t dropped = 0;

  TraceData();

  /// Intern `s`, returning its index (0 for empty / null).
  std::uint32_t intern(const char* s);

  /// Resolve a string index (out-of-range → "").
  const std::string& str(std::uint32_t idx) const;

  bool empty() const { return events.empty(); }
};

/// Append `shard`'s tracks and events to `base`, remapping ids and
/// aligning the shard's wall clock to base's epoch.  `track_prefix`
/// (e.g. "task-3/") namespaces the shard's track names.
void merge_into(TraceData* base, const TraceData& shard,
                const std::string& track_prefix = "");

/// Sort events by wall time (stable), as exporters expect.
void sort_events(TraceData* data);

/// Chrome trace-event JSON; returns false on I/O error.
bool write_chrome_json(const TraceData& data, const std::string& path);

/// Compact binary spill; returns false on I/O error.
bool write_binary(const TraceData& data, const std::string& path);

/// Parse a binary spill.  Returns false (and leaves *out unspecified) on
/// read or format error.
bool read_binary(const std::string& path, TraceData* out);

/// Per-category/name rollup used by `unimem_trace --summary`: span pairs
/// matched per track (B/E nesting), instants and counters tallied.
struct TraceSummaryRow {
  std::string cat;
  std::string name;
  std::uint64_t count = 0;
  double wall_total_s = 0.0;  ///< summed span durations (wall clock)
  double vt_total_s = 0.0;    ///< summed span durations (virtual clock)
  /// Torn spans: BEGINs whose END never arrived (writer died mid-span or
  /// the ring dropped the END).  Their durations are unknowable, so they
  /// are excluded from count/totals and tallied here instead.
  std::uint64_t truncated = 0;
};

std::vector<TraceSummaryRow> summarize(const TraceData& data);

}  // namespace unimem::trace
