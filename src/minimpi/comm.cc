#include "minimpi/comm.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

namespace unimem::mpi {

namespace {

struct Message {
  std::vector<std::byte> data;
  double send_vt = 0;
};

/// One reusable rendezvous for collectives.  Two slots alternate (ping-pong
/// by collective sequence parity); a slot is reusable only after all ranks
/// of the previous collective that used it have exited, so a fast rank can
/// never corrupt a slow rank's copy-out.
struct CollSlot {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t seq = ~0ull;  ///< collective number currently served
  int arrived = 0;
  int exited = 0;
  bool done = false;
  bool idle = true;
  double max_vt = 0;
  /// Per-rank contribution staging (reduced in rank order => deterministic).
  std::vector<std::vector<std::byte>> contrib;
  std::vector<std::byte> result;
};

}  // namespace

struct World::Impl {
  std::mutex mail_mu;
  std::condition_variable mail_cv;
  // (src, dst, tag) -> FIFO of messages.
  std::map<std::tuple<int, int, int>, std::deque<Message>> mailboxes;
  CollSlot slots[2];
  // Per-rank collective sequence numbers (SPMD: all ranks issue the same
  // collectives in the same order).
  std::vector<std::uint64_t> coll_seq;
};

// ---------------------------------------------------------------------------
// World

World::World(int nranks, NetworkParams net, int ranks_per_node)
    : nranks_(nranks),
      ranks_per_node_(std::max(1, ranks_per_node)),
      net_(net),
      impl_(std::make_unique<Impl>()) {
  if (nranks < 1) throw std::invalid_argument("World: nranks must be >= 1");
  impl_->coll_seq.assign(nranks, 0);
  comms_.reserve(nranks);
  for (int r = 0; r < nranks; ++r)
    comms_.push_back(std::unique_ptr<Comm>(new Comm(this, r)));
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks_);
  threads.reserve(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

// ---------------------------------------------------------------------------
// Comm basics

Comm::Comm(World* world, int rank) : world_(world), rank_(rank) {}

int Comm::size() const { return world_->size(); }

int Comm::node() const { return rank_ / world_->ranks_per_node(); }

void Comm::pre(const OpInfo& info) {
  ++op_count_;
  if (hooks_ != nullptr) hooks_->on_pre_op(info);
}

void Comm::post(const OpInfo& info) {
  if (hooks_ != nullptr) hooks_->on_post_op(info);
}

// ---------------------------------------------------------------------------
// Collective engine

namespace {

/// Generic collective rendezvous.  `contribute` copies this rank's input
/// into its staging slice; `finalize` (run once, by the last arriver, with
/// contributions ordered by rank) builds the shared result; `copy_out`
/// extracts this rank's output.  Any of them may be empty functions.
template <typename Contribute, typename Finalize, typename CopyOut>
void run_collective(World::Impl& w, int nranks, int rank, std::uint64_t seq,
                    clk::VirtualClock& clock, double cost,
                    Contribute contribute, Finalize finalize,
                    CopyOut copy_out) {
  CollSlot& slot = w.slots[seq % 2];
  std::unique_lock<std::mutex> lk(slot.mu);
  // Wait until the slot serves `seq` or is free to be claimed for it.
  slot.cv.wait(lk, [&] { return slot.seq == seq || slot.idle; });
  if (slot.idle) {
    slot.idle = false;
    slot.seq = seq;
    slot.arrived = 0;
    slot.exited = 0;
    slot.done = false;
    slot.max_vt = 0;
    slot.contrib.assign(nranks, {});
    slot.result.clear();
  }
  contribute(slot.contrib[rank]);
  slot.max_vt = std::max(slot.max_vt, clock.now());
  if (++slot.arrived == nranks) {
    finalize(slot.contrib, slot.result);
    slot.done = true;
    slot.cv.notify_all();
  } else {
    slot.cv.wait(lk, [&] { return slot.done && slot.seq == seq; });
  }
  copy_out(slot.result);
  clock.wait_until(slot.max_vt + cost);
  if (++slot.exited == nranks) {
    slot.idle = true;  // reusable for seq+2
    slot.cv.notify_all();
  }
}

template <typename T>
void reduce_in_place(std::vector<std::byte>& acc,
                     const std::vector<std::byte>& in, ReduceOp op) {
  auto* a = reinterpret_cast<T*>(acc.data());
  auto* b = reinterpret_cast<const T*>(in.data());
  std::size_t n = acc.size() / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] += b[i]; break;
      case ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
      case ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
    }
  }
}

template <typename T>
void typed_allreduce(World& world, World::Impl& impl, Comm& comm,
                     clk::VirtualClock& clock, T* buf, std::size_t n,
                     ReduceOp op, std::uint64_t seq) {
  const std::size_t bytes = n * sizeof(T);
  run_collective(
      impl, world.size(), comm.rank(), seq, clock,
      world.network().collective_cost(bytes, world.size()),
      [&](std::vector<std::byte>& mine) {
        mine.resize(bytes);
        std::memcpy(mine.data(), buf, bytes);
      },
      [&](std::vector<std::vector<std::byte>>& contrib,
          std::vector<std::byte>& result) {
        result = contrib[0];
        for (int r = 1; r < world.size(); ++r)
          reduce_in_place<T>(result, contrib[r], op);
      },
      [&](const std::vector<std::byte>& result) {
        std::memcpy(buf, result.data(), bytes);
      });
}

}  // namespace

void Comm::barrier() {
  OpInfo info{OpKind::kBarrier, -1, 0, true};
  pre(info);
  std::uint64_t seq = world_->impl_->coll_seq[rank_]++;
  run_collective(
      *world_->impl_, world_->size(), rank_, seq, clock_,
      world_->network().collective_cost(0, world_->size()),
      [](std::vector<std::byte>&) {},
      [](std::vector<std::vector<std::byte>>&, std::vector<std::byte>&) {},
      [](const std::vector<std::byte>&) {});
  post(info);
}

void Comm::allreduce(double* buf, std::size_t n, ReduceOp op) {
  OpInfo info{OpKind::kAllreduce, -1, n * sizeof(double), true,
              buf, n * sizeof(double), buf, n * sizeof(double)};
  pre(info);
  std::uint64_t seq = world_->impl_->coll_seq[rank_]++;
  typed_allreduce(*world_, *world_->impl_, *this, clock_, buf, n, op, seq);
  post(info);
}

void Comm::allreduce(std::uint64_t* buf, std::size_t n, ReduceOp op) {
  OpInfo info{OpKind::kAllreduce, -1, n * sizeof(std::uint64_t), true,
              buf, n * sizeof(std::uint64_t), buf, n * sizeof(std::uint64_t)};
  pre(info);
  std::uint64_t seq = world_->impl_->coll_seq[rank_]++;
  typed_allreduce(*world_, *world_->impl_, *this, clock_, buf, n, op, seq);
  post(info);
}

void Comm::reduce(double* buf, std::size_t n, int root, ReduceOp op) {
  OpInfo info{OpKind::kReduce, root, n * sizeof(double), true,
              buf, n * sizeof(double)};
  if (rank_ == root) {
    info.write_buf = buf;
    info.write_bytes = n * sizeof(double);
  }
  pre(info);
  std::uint64_t seq = world_->impl_->coll_seq[rank_]++;
  const std::size_t bytes = n * sizeof(double);
  const int my_rank = rank_;
  run_collective(
      *world_->impl_, world_->size(), rank_, seq, clock_,
      world_->network().collective_cost(bytes, world_->size()),
      [&](std::vector<std::byte>& mine) {
        mine.resize(bytes);
        std::memcpy(mine.data(), buf, bytes);
      },
      [&](std::vector<std::vector<std::byte>>& contrib,
          std::vector<std::byte>& result) {
        result = contrib[0];
        for (int r = 1; r < world_->size(); ++r)
          reduce_in_place<double>(result, contrib[r], op);
      },
      [&](const std::vector<std::byte>& result) {
        if (my_rank == root) std::memcpy(buf, result.data(), bytes);
      });
  post(info);
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  OpInfo info{OpKind::kBcast, root, bytes, true};
  if (rank_ == root) {
    info.read_buf = buf;
    info.read_bytes = bytes;
  } else {
    info.write_buf = buf;
    info.write_bytes = bytes;
  }
  pre(info);
  std::uint64_t seq = world_->impl_->coll_seq[rank_]++;
  const int my_rank = rank_;
  run_collective(
      *world_->impl_, world_->size(), rank_, seq, clock_,
      world_->network().collective_cost(bytes, world_->size()),
      [&](std::vector<std::byte>& mine) {
        if (my_rank == root) {
          mine.resize(bytes);
          std::memcpy(mine.data(), buf, bytes);
        }
      },
      [&](std::vector<std::vector<std::byte>>& contrib,
          std::vector<std::byte>& result) { result = contrib[root]; },
      [&](const std::vector<std::byte>& result) {
        if (my_rank != root) std::memcpy(buf, result.data(), bytes);
      });
  post(info);
}

// ---------------------------------------------------------------------------
// Point-to-point

void Comm::push_message(int dst, int tag, const void* buf, std::size_t bytes) {
  auto& impl = *world_->impl_;
  Message m;
  m.data.resize(bytes);
  if (bytes > 0) std::memcpy(m.data.data(), buf, bytes);
  m.send_vt = clock_.now();
  {
    std::lock_guard<std::mutex> lk(impl.mail_mu);
    impl.mailboxes[{rank_, dst, tag}].push_back(std::move(m));
  }
  impl.mail_cv.notify_all();
  // Eager-send overhead on the sender.
  clock_.advance(world_->network().alpha_s);
}

void Comm::pop_message(int src, int tag, void* buf, std::size_t bytes) {
  auto& impl = *world_->impl_;
  Message m;
  {
    std::unique_lock<std::mutex> lk(impl.mail_mu);
    auto key = std::make_tuple(src, rank_, tag);
    impl.mail_cv.wait(lk, [&] {
      auto it = impl.mailboxes.find(key);
      return it != impl.mailboxes.end() && !it->second.empty();
    });
    auto& q = impl.mailboxes[key];
    m = std::move(q.front());
    q.pop_front();
  }
  if (m.data.size() != bytes)
    throw std::runtime_error("minimpi: recv size mismatch");
  if (bytes > 0) std::memcpy(buf, m.data.data(), bytes);
  // The message is available no earlier than send time + wire cost.
  clock_.wait_until(m.send_vt + world_->network().p2p_cost(bytes));
}

void Comm::send(const void* buf, std::size_t bytes, int dst, int tag) {
  OpInfo info{OpKind::kSend, dst, bytes, true, buf, bytes};
  pre(info);
  push_message(dst, tag, buf, bytes);
  post(info);
}

void Comm::recv(void* buf, std::size_t bytes, int src, int tag) {
  OpInfo info{OpKind::kRecv, src, bytes, true, nullptr, 0, buf, bytes};
  pre(info);
  pop_message(src, tag, buf, bytes);
  post(info);
}

Request Comm::isend(const void* buf, std::size_t bytes, int dst, int tag) {
  // Eager send: the payload is read (buffered) immediately, so the
  // read-side wait applies even though the call is non-blocking.
  OpInfo info{OpKind::kIsend, dst, bytes, false, buf, bytes};
  pre(info);
  push_message(dst, tag, buf, bytes);  // eager: buffered immediately
  post(info);
  Request r;
  r.kind = Request::Kind::kSend;
  r.peer = dst;
  r.tag = tag;
  r.bytes = bytes;
  r.done = true;
  return r;
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  OpInfo info{OpKind::kIrecv, src, bytes, false};
  pre(info);
  post(info);
  Request r;
  r.kind = Request::Kind::kRecv;
  r.peer = src;
  r.tag = tag;
  r.buf = buf;
  r.bytes = bytes;
  r.done = false;
  return r;
}

void Comm::wait(Request& req) {
  OpInfo info{OpKind::kWait, req.peer, req.bytes, true};
  if (req.kind == Request::Kind::kRecv && !req.done) {
    info.write_buf = req.buf;
    info.write_bytes = req.bytes;
  }
  pre(info);
  if (req.kind == Request::Kind::kRecv && !req.done) {
    pop_message(req.peer, req.tag, req.buf, req.bytes);
    req.done = true;
  }
  post(info);
}

void Comm::sendrecv(const void* sbuf, std::size_t sbytes, int dst, void* rbuf,
                    std::size_t rbytes, int src, int tag) {
  OpInfo info{OpKind::kSendrecv, dst, sbytes + rbytes, true,
              sbuf, sbytes, rbuf, rbytes};
  pre(info);
  push_message(dst, tag, sbuf, sbytes);
  pop_message(src, tag, rbuf, rbytes);
  post(info);
}

void Comm::alltoall(const void* sbuf, void* rbuf, std::size_t bytes_per_rank) {
  const std::size_t all_bytes =
      bytes_per_rank * static_cast<std::size_t>(size());
  OpInfo info{OpKind::kAlltoall, -1, all_bytes, true,
              sbuf, all_bytes, rbuf, all_bytes};
  pre(info);
  const auto* s = static_cast<const std::byte*>(sbuf);
  auto* r = static_cast<std::byte*>(rbuf);
  const int p = size();
  // Local slice copies over without the wire.
  std::memcpy(r + static_cast<std::size_t>(rank_) * bytes_per_rank,
              s + static_cast<std::size_t>(rank_) * bytes_per_rank,
              bytes_per_rank);
  // Pairwise exchange: in round k, exchange with rank ^ k (power-of-two
  // sizes) or (rank + k) % p generally.
  constexpr int kTag = 0x5a5a;
  for (int k = 1; k < p; ++k) {
    int dst = (rank_ + k) % p;
    int src = (rank_ - k + p) % p;
    push_message(dst, kTag + k, s + static_cast<std::size_t>(dst) * bytes_per_rank,
                 bytes_per_rank);
    pop_message(src, kTag + k, r + static_cast<std::size_t>(src) * bytes_per_rank,
                bytes_per_rank);
  }
  // All ranks leave an alltoall together (it is synchronizing in practice).
  std::uint64_t seq = world_->impl_->coll_seq[rank_]++;
  run_collective(
      *world_->impl_, p, rank_, seq, clock_, 0.0,
      [](std::vector<std::byte>&) {},
      [](std::vector<std::vector<std::byte>>&, std::vector<std::byte>&) {},
      [](const std::vector<std::byte>&) {});
  post(info);
}

}  // namespace unimem::mpi
