// Alpha-beta communication cost model for the simulated interconnect.
#pragma once

#include <cmath>
#include <cstddef>

namespace unimem::mpi {

struct NetworkParams {
  double alpha_s = 2e-6;   ///< per-message latency (seconds)
  double beta_bps = 5e9;   ///< link bandwidth (bytes/second)

  /// Point-to-point message cost.
  double p2p_cost(std::size_t bytes) const {
    return alpha_s + static_cast<double>(bytes) / beta_bps;
  }

  /// Tree-structured collective over `p` ranks moving `bytes` per rank.
  double collective_cost(std::size_t bytes, int p) const {
    int rounds = p <= 1 ? 0 : static_cast<int>(std::ceil(std::log2(p)));
    return rounds * p2p_cost(bytes);
  }
};

}  // namespace unimem::mpi
