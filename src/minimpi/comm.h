// minimpi: a threads-as-ranks message-passing runtime implementing the MPI
// subset Unimem and the workloads need, with virtual-time semantics.
//
// Each rank runs on its own std::thread and owns a VirtualClock.  Operations
// synchronize both the host threads (mutex/condvar) and the virtual clocks
// the way real MPI synchronizes wall clocks: collectives leave all ranks at
// max(entry times) + collective cost; a receive completes no earlier than
// send time + message cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "minimpi/network_params.h"
#include "minimpi/pmpi.h"
#include "simclock/virtual_clock.h"

namespace unimem::mpi {

class World;

enum class ReduceOp : int { kSum, kMax, kMin };

/// Handle for a non-blocking operation.  Obtained from isend/irecv and
/// completed by Comm::wait.
struct Request {
  enum class Kind { kNone, kSend, kRecv } kind = Kind::kNone;
  int peer = -1;
  int tag = 0;
  void* buf = nullptr;
  std::size_t bytes = 0;
  bool done = true;
};

class Comm {
 public:
  Comm(World* world, int rank);

  int rank() const { return rank_; }
  int size() const;
  /// Node this rank is mapped to (ranks_per_node is a World parameter).
  int node() const;

  clk::VirtualClock& clock() { return clock_; }
  const clk::VirtualClock& clock() const { return clock_; }

  /// Register PMPI-style hooks for this rank (may be nullptr to clear).
  void set_hooks(PmpiHooks* hooks) { hooks_ = hooks; }

  // ---- blocking collectives -------------------------------------------
  void barrier();
  void allreduce(double* buf, std::size_t n, ReduceOp op = ReduceOp::kSum);
  void allreduce(std::uint64_t* buf, std::size_t n,
                 ReduceOp op = ReduceOp::kSum);
  void reduce(double* buf, std::size_t n, int root,
              ReduceOp op = ReduceOp::kSum);
  void bcast(void* buf, std::size_t bytes, int root);

  // ---- point-to-point --------------------------------------------------
  void send(const void* buf, std::size_t bytes, int dst, int tag);
  void recv(void* buf, std::size_t bytes, int src, int tag);
  Request isend(const void* buf, std::size_t bytes, int dst, int tag);
  Request irecv(void* buf, std::size_t bytes, int src, int tag);
  void wait(Request& req);
  void sendrecv(const void* sbuf, std::size_t sbytes, int dst,
                void* rbuf, std::size_t rbytes, int src, int tag);

  /// Pairwise-exchange all-to-all: every rank sends `bytes_per_rank` to
  /// every other rank from sbuf[r*bytes_per_rank].
  void alltoall(const void* sbuf, void* rbuf, std::size_t bytes_per_rank);

  /// Number of operations this rank has issued (PMPI "global counter").
  std::uint64_t op_count() const { return op_count_; }

 private:
  friend class World;
  void pre(const OpInfo& info);
  void post(const OpInfo& info);
  void push_message(int dst, int tag, const void* buf, std::size_t bytes);
  void pop_message(int src, int tag, void* buf, std::size_t bytes);

  World* world_;
  int rank_;
  clk::VirtualClock clock_;
  PmpiHooks* hooks_ = nullptr;
  std::uint64_t op_count_ = 0;
};

/// Owns the ranks, the mailboxes and the collective slots; spawns one
/// thread per rank and joins them.
class World {
 public:
  /// `ranks_per_node` controls the node mapping used by the DRAM arbiter
  /// (the paper runs 1 or 4 MPI processes per node).
  World(int nranks, NetworkParams net = NetworkParams{},
        int ranks_per_node = 1);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return nranks_; }
  int ranks_per_node() const { return ranks_per_node_; }
  const NetworkParams& network() const { return net_; }
  Comm& comm(int rank) { return *comms_[rank]; }

  /// Run `fn(comm)` on every rank, each on its own thread; returns when all
  /// ranks finish.  Rethrows the first rank exception, if any.
  void run(const std::function<void(Comm&)>& fn);

  /// Internal shared state (mailboxes, collective slots); defined in
  /// comm.cc.  Public so the collective engine helpers can name it.
  struct Impl;

 private:
  friend class Comm;
  int nranks_;
  int ranks_per_node_;
  NetworkParams net_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace unimem::mpi
