// PMPI-style profiling hook layer.
//
// Paper §3.3 / Fig. 7: "Based on PMPI, we can transparently identify
// execution phases and control profiling without programmer intervention
// ... we implement an MPI wrapper [that] encapsulates the functionality of
// enabling and disabling profiling and uses a global counter to identify
// phases."
//
// Every minimpi operation invokes the rank's registered hooks before and
// after doing its work, passing an OpInfo describing the call — exactly the
// information a PMPI wrapper would see.  Unimem's phase tracker is one such
// hook; nothing in minimpi knows about Unimem.
#pragma once

#include <cstddef>

namespace unimem::mpi {

enum class OpKind : int {
  kBarrier,
  kAllreduce,
  kReduce,
  kBcast,
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kSendrecv,
  kAlltoall,
};

inline const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kBarrier: return "Barrier";
    case OpKind::kAllreduce: return "Allreduce";
    case OpKind::kReduce: return "Reduce";
    case OpKind::kBcast: return "Bcast";
    case OpKind::kSend: return "Send";
    case OpKind::kRecv: return "Recv";
    case OpKind::kIsend: return "Isend";
    case OpKind::kIrecv: return "Irecv";
    case OpKind::kWait: return "Wait";
    case OpKind::kSendrecv: return "Sendrecv";
    case OpKind::kAlltoall: return "Alltoall";
  }
  return "?";
}

struct OpInfo {
  OpKind kind = OpKind::kBarrier;
  /// Peer rank for point-to-point; -1 for collectives.
  int peer = -1;
  /// Payload bytes moved by this rank in this call.
  std::size_t bytes = 0;
  /// Blocking calls delineate phases (paper §2.1); non-blocking calls are
  /// merged into the immediately following phase.
  bool blocking = true;
  /// Application buffers this rank's call reads/writes (exactly what a
  /// PMPI wrapper sees).  The Unimem hook holds the op until in-flight
  /// migrations of the owning data units complete — the same "a phase
  /// must not run while its objects are in flight" rule compute phases
  /// follow; without it the helper thread's copy races the op's memcpy.
  const void* read_buf = nullptr;
  std::size_t read_bytes = 0;
  const void* write_buf = nullptr;
  std::size_t write_bytes = 0;
};

class PmpiHooks {
 public:
  virtual ~PmpiHooks() = default;
  /// Called on the calling rank's thread immediately before the operation.
  virtual void on_pre_op(const OpInfo& info) { (void)info; }
  /// Called immediately after the operation completes on this rank.
  virtual void on_post_op(const OpInfo& info) { (void)info; }
};

}  // namespace unimem::mpi
