// Per-rank virtual clock.  All simulated costs (compute, memory stalls,
// communication, exposed migration waits) advance this clock; wall-clock
// time of the host machine is irrelevant to reported results.
#pragma once

#include <algorithm>
#include <cassert>

namespace unimem::clk {

class VirtualClock {
 public:
  /// Current virtual time in seconds.
  double now() const { return now_s_; }

  /// Advance by `dt` seconds (dt >= 0).
  void advance(double dt) {
    assert(dt >= 0.0);
    now_s_ += dt;
  }

  /// Jump forward to absolute time `t` if `t` is in the future; no-op
  /// otherwise.  Used when waiting on another rank or a helper thread.
  /// Returns the amount of time actually waited.
  double wait_until(double t) {
    double waited = std::max(0.0, t - now_s_);
    now_s_ += waited;
    return waited;
  }

  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace unimem::clk
