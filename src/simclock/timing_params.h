// Global timing parameters of the simulated node: CPU speed, achievable
// floating-point rate, default memory-level parallelism, and the
// perf-counter sampling interval (in cycles, as on real PEBS/IBS setups).
#pragma once

#include <cstdint>

namespace unimem::clk {

struct TimingParams {
  /// CPU core frequency (Hz).  Platform A in the paper: 2.4 GHz Xeon E5.
  double cpu_freq_hz = 2.4e9;

  /// Sustained FLOP rate used to charge compute time (FLOP/s); reflects
  /// SIMD execution on the Xeon E5 class hardware the paper uses.
  double flops_per_sec = 9.6e9;

  /// Memory-level parallelism of a prefetch-friendly unit-stride stream:
  /// how many outstanding misses the core + prefetchers overlap.  With the
  /// DRAM basis (80 ns, 12.8 GB/s) the bandwidth term dominates once
  /// MLP > lat*bw/64B = 16, so streams (MLP 32) are bandwidth-bound and
  /// irregular patterns (MLP ~8, see effective_mlp) are latency-leaning.
  /// Dependent (pointer-chasing) chains always use MLP = 1.
  int default_mlp = 32;

  /// Hardware-counter sampling interval in CPU cycles (paper: 1000).
  std::uint64_t sample_interval_cycles = 1000;

  /// Seconds per sample at the configured frequency.
  double sample_period_s() const {
    return static_cast<double>(sample_interval_cycles) / cpu_freq_hz;
  }

  /// Seconds to execute `flops` floating point operations.
  double compute_seconds(double flops) const { return flops / flops_per_sec; }
};

}  // namespace unimem::clk
